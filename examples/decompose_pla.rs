//! Command-line decomposer: reads a PLA file (or a named builtin
//! benchmark), runs BI-DECOMP, writes BLIF next to it, and prints the
//! paper's measurement columns.
//!
//! Usage:
//!   cargo run --release --example decompose_pla -- <file.pla | benchmark-name> [out.blif]

use std::process::ExitCode;

use bidecomp::{decompose_pla, Options};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(source) = args.next() else {
        eprintln!("usage: decompose_pla <file.pla | benchmark-name> [out.blif]");
        eprintln!("builtin benchmarks: 9sym 16sym8 rd73 rd84 5xp1 t481 alu2 alu4 ...");
        return ExitCode::FAILURE;
    };
    let (name, pla) = if let Some(b) = benchmarks::by_name(&source) {
        (source.clone(), b.pla)
    } else {
        let text = match std::fs::read_to_string(&source) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {source}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match text.parse() {
            Ok(p) => (source.clone(), p),
            Err(e) => {
                eprintln!("cannot parse {source}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let outcome = decompose_pla(&pla, &Options::default());
    let s = outcome.netlist.stats();
    println!(
        "{name}: ins={} outs={} gates={} exors={} cascades={} area={} delay={:.1} \
         verified={} time={:?}",
        s.inputs,
        s.outputs,
        s.gates,
        s.exors,
        s.cascades,
        s.area,
        s.delay,
        outcome.verified,
        outcome.elapsed
    );
    if let Some(out_path) = args.next() {
        let blif = outcome.netlist.to_blif(&name);
        if let Err(e) = std::fs::write(&out_path, blif) {
            eprintln!("cannot write {out_path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {out_path}");
    }
    ExitCode::SUCCESS
}
