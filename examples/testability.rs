//! Theorem 5 demonstration: netlists produced by bi-decomposition are
//! 100% single-stuck-at testable; complete ATPG emits a compact test set.
//!
//! Run with: `cargo run --release --example testability`

use bidecomp::{decompose_pla, Options};

fn main() {
    println!("Theorem 5: complete stuck-at testability of decomposed netlists\n");
    println!(
        "{:8} {:>6} {:>7} {:>9} {:>6} {:>9}",
        "name", "gates", "faults", "redundant", "tests", "coverage"
    );
    for name in ["rd73", "5xp1", "9sym"] {
        let b = benchmarks::by_name(name).expect("known benchmark");
        let outcome = decompose_pla(&b.pla, &Options::default());
        assert!(outcome.verified);
        let report = atpg::generate_tests(&outcome.netlist);
        println!(
            "{:8} {:>6} {:>7} {:>9} {:>6} {:>8.1}%",
            name,
            outcome.netlist.stats().gates,
            report.total_faults,
            report.redundant,
            report.tests.len(),
            100.0 * report.coverage()
        );
    }
    println!("\nEvery collapsed fault is detected; no redundant logic is");
    println!("generated (paper §5, Theorem 5). Compare with a sabotaged");
    println!("netlist containing an absorbed term:");
    let mut nl = netlist::Netlist::new();
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let ab = nl.add_gate(netlist::Gate2::And, a, b);
    let f = nl.add_gate(netlist::Gate2::Or, a, ab);
    nl.add_output("f", f);
    let report = atpg::generate_tests(&nl);
    println!(
        "  a + a·b: {} faults, {} redundant → {:?}",
        report.total_faults, report.redundant, report.redundant_faults
    );
}
