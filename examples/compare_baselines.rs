//! Three decomposition philosophies on the same arithmetic function:
//! two-level covering (SIS-like), weak-only BDD splitting (BDS-like), and
//! strong bi-decomposition (BI-DECOMP).
//!
//! Run with: `cargo run --release --example compare_baselines`

use baseline::{bds_like, sis_like};
use bidecomp::{decompose_pla, Options};

fn main() {
    for name in ["rd84", "5xp1", "t481"] {
        let b = benchmarks::by_name(name).expect("known benchmark");
        let sis = sis_like(&b.pla).stats();
        let bds = bds_like(&b.pla).stats();
        let outcome = decompose_pla(&b.pla, &Options::default());
        assert!(outcome.verified);
        let bi = outcome.netlist.stats();
        println!("{name} ({} in / {} out)", bi.inputs, bi.outputs);
        println!(
            "  SIS-like   : {:>5} gates ({:>3} exor), {:>3} levels, area {:>7.0}",
            sis.gates, sis.exors, sis.cascades, sis.area
        );
        println!(
            "  BDS-like   : {:>5} gates ({:>3} exor), {:>3} levels, area {:>7.0}",
            bds.gates, bds.exors, bds.cascades, bds.area
        );
        println!(
            "  BI-DECOMP  : {:>5} gates ({:>3} exor), {:>3} levels, area {:>7.0}",
            bi.gates, bi.exors, bi.cascades, bi.area
        );
        println!();
    }
    println!("Strong bi-decomposition finds the EXOR structure (arithmetic)");
    println!("and balanced variable splits (short delay) that the weak-only");
    println!("and two-level flows miss — the paper's §8 conclusion.");
}
