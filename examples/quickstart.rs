//! Quickstart: decompose a small incompletely specified function and
//! inspect every artifact of the flow.
//!
//! Run with: `cargo run --example quickstart`

use bidecomp::{decompose_pla, Options};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Fig. 3 function, F = OR(a·b, c·d), as a PLA.
    let pla: pla::Pla = "\
.i 4
.o 1
.ilb a b c d
.ob f
11-- 1
--11 1
.e
"
    .parse()?;

    let outcome = decompose_pla(&pla, &Options::default());
    let stats = outcome.netlist.stats();

    println!("BI-DECOMP quickstart — F = OR(a·b, c·d)");
    println!("verified by the BDD verifier: {}", outcome.verified);
    println!(
        "gates: {} ({} EXOR), levels: {}, area: {}, delay: {}",
        stats.gates, stats.exors, stats.cascades, stats.area, stats.delay
    );
    println!(
        "recursive calls: {}, strong or/and/exor: {}/{}/{}, weak: {}",
        outcome.stats.calls,
        outcome.stats.strong_or,
        outcome.stats.strong_and,
        outcome.stats.strong_exor,
        outcome.stats.weak
    );
    println!("\nBLIF output:\n{}", outcome.netlist.to_blif("fig3"));

    // Exercise the netlist.
    assert_eq!(outcome.netlist.eval_all(&[true, true, false, false]), vec![true]);
    assert_eq!(outcome.netlist.eval_all(&[true, false, true, false]), vec![false]);
    println!("simulation spot-checks passed");
    Ok(())
}
